package cluster_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/exp"
	"repro/internal/service"
)

// testCluster is n colord nodes behind one gateway, all in-process — the
// integration harness for the routed plane. Every node is a full service
// (own caches, own sessions, own hub) wired with a RemoteFill against its
// peers; the gateway fronts them exactly as colorgate would.
type testCluster struct {
	gw       *cluster.Gateway
	gwSrv    *httptest.Server
	nodes    []*service.Service
	backends []*httptest.Server
	peers    []string
}

func startCluster(t *testing.T, n int, cfg service.Config) *testCluster {
	t.Helper()
	tc := &testCluster{}
	// RemoteFill must exist at service construction, but the filler needs
	// every peer URL — late-bind through an atomic slot.
	slots := make([]atomic.Pointer[cluster.Filler], n)
	for i := 0; i < n; i++ {
		slot := &slots[i]
		c := cfg
		c.RemoteFill = func(graphName, key string) []byte {
			if f := slot.Load(); f != nil {
				return f.Fill(graphName, key)
			}
			return nil
		}
		svc := service.New(c)
		srv := httptest.NewServer(svc.Handler())
		tc.nodes = append(tc.nodes, svc)
		tc.backends = append(tc.backends, srv)
		tc.peers = append(tc.peers, srv.URL)
	}
	for i := range slots {
		slots[i].Store(cluster.NewFiller(tc.peers, tc.peers[i], nil, time.Second))
	}
	gw, err := cluster.NewGateway(cluster.GatewayConfig{Peers: tc.peers, HealthInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	tc.gw = gw
	tc.gwSrv = httptest.NewServer(gw.Handler())
	t.Cleanup(tc.close)
	return tc
}

func (tc *testCluster) close() {
	tc.gwSrv.Close()
	tc.gw.Close()
	for i, srv := range tc.backends {
		srv.Close()
		tc.nodes[i].Close()
	}
}

func postJSON(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func colorBody(n, seed int) []byte {
	return []byte(fmt.Sprintf(`{"kind":"edge","alg":"be","graph":{"family":"gnm","n":%d,"m":%d,"seed":%d}}`, n, 3*n, seed))
}

// readSSEFrame parses one SSE frame (id/event/data lines to a blank line).
func readSSEFrame(r *bufio.Reader) (id int64, event string, data []byte, err error) {
	id = -1
	seen := false
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return id, event, data, err
		}
		line = strings.TrimRight(line, "\n")
		if line == "" {
			if seen {
				return id, event, data, nil
			}
			continue
		}
		seen = true
		switch {
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &id)
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = []byte(line[len("data: "):])
		}
	}
}

// TestClusterByteIdenticalToSingleNode is the clustering correctness
// contract: mixed color/mutate/subscribe traffic driven concurrently through
// the gateway produces exactly the bytes a single node would serve — the
// cluster is a cache-locality optimization, never a semantic one.
func TestClusterByteIdenticalToSingleNode(t *testing.T) {
	cfg := service.Config{Workers: 2, BatchWindow: 100 * time.Microsecond}
	tc := startCluster(t, 3, cfg)
	oracle := service.New(cfg)
	defer oracle.Close()

	const graphs = 6
	const sessions = 3
	const opsPerSession = 25

	type sessRec struct {
		fingerprints []string
		bodies       [][]byte
	}
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		colorGot   = map[int][]byte{}
		sessGot    = map[string]*sessRec{}
		subSeqs    = map[string][]int64{}
		subPrints  = map[string][]string{}
		subHellos  = map[string]int64{}
		streamErrs = map[string]error{}
	)

	// Color plane: each graph hammered from its own goroutine; repeats must
	// hit the owner's cache, every body identical.
	for gi := 0; gi < graphs; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			body := colorBody(30+gi, gi)
			var first []byte
			for rep := 0; rep < 8; rep++ {
				resp, data := postJSON(t, tc.gwSrv.URL+"/v1/color", body)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("graph %d: status %d: %s", gi, resp.StatusCode, data)
					return
				}
				if first == nil {
					first = data
				} else if !bytes.Equal(first, data) {
					t.Errorf("graph %d: repeat %d served different bytes", gi, rep)
					return
				}
			}
			mu.Lock()
			colorGot[gi] = first
			mu.Unlock()
		}(gi)
	}

	// Session plane: each session created, subscribed to (through the
	// gateway), and mutated op by op — the subscriber and the mutator race.
	for si := 0; si < sessions; si++ {
		name := fmt.Sprintf("sess-%d", si)
		base := exp.GraphSpec{Family: "gnm", N: 24, M: 50, Seed: int64(si)}
		stream := exp.MutationStream{Kind: "mix", Base: base, Ops: opsPerSession, Seed: int64(40 + si)}
		_, muts, err := stream.Generate()
		if err != nil {
			t.Fatal(err)
		}
		createBody, _ := json.Marshal(service.MutateRequest{Session: name, Base: &base})
		if resp, data := postJSON(t, tc.gwSrv.URL+"/v1/mutate", createBody); resp.StatusCode != http.StatusOK {
			t.Fatalf("create %s: %d: %s", name, resp.StatusCode, data)
		}

		// Subscriber through the gateway, racing the mutator below.
		req, _ := http.NewRequest("GET", tc.gwSrv.URL+"/v1/subscribe?session="+name, nil)
		sresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer sresp.Body.Close()
		if sresp.StatusCode != http.StatusOK {
			t.Fatalf("subscribe %s via gateway: %d", name, sresp.StatusCode)
		}
		rd := bufio.NewReader(sresp.Body)
		_, ev, data, err := readSSEFrame(rd)
		if err != nil || ev != "hello" {
			t.Fatalf("subscribe %s: first frame %q err %v", name, ev, err)
		}
		var hello struct {
			Seq int64 `json:"seq"`
		}
		json.Unmarshal(data, &hello)
		subHellos[name] = hello.Seq
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			var seqs []int64
			var prints []string
			for len(seqs) < opsPerSession {
				id, ev, data, err := readSSEFrame(rd)
				if err != nil {
					mu.Lock()
					streamErrs[name] = err
					mu.Unlock()
					return
				}
				if ev != "delta" {
					continue
				}
				var d struct {
					Seq         int64  `json:"seq"`
					Fingerprint string `json:"fingerprint"`
				}
				json.Unmarshal(data, &d)
				if id != d.Seq {
					mu.Lock()
					streamErrs[name] = fmt.Errorf("SSE id %d != seq %d", id, d.Seq)
					mu.Unlock()
					return
				}
				seqs = append(seqs, d.Seq)
				prints = append(prints, d.Fingerprint)
			}
			mu.Lock()
			subSeqs[name] = seqs
			subPrints[name] = prints
			mu.Unlock()
		}(name)

		wg.Add(1)
		go func(name string, muts []exp.Mutation) {
			defer wg.Done()
			rec := &sessRec{}
			for _, op := range muts {
				body, _ := json.Marshal(service.MutateRequest{Session: name, Ops: []exp.Mutation{op}})
				resp, data := postJSON(t, tc.gwSrv.URL+"/v1/mutate", body)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("mutate %s: %d: %s", name, resp.StatusCode, data)
					return
				}
				var mr service.MutateResponse
				if err := json.Unmarshal(data, &mr); err != nil {
					t.Errorf("mutate %s: %v", name, err)
					return
				}
				rec.fingerprints = append(rec.fingerprints, mr.Fingerprint)
				rec.bodies = append(rec.bodies, data)
			}
			mu.Lock()
			sessGot[name] = rec
			mu.Unlock()
		}(name, muts)
	}
	wg.Wait()
	for name, err := range streamErrs {
		t.Fatalf("stream %s: %v", name, err)
	}

	// Oracle comparison: the single node answers every request with the
	// same bytes the cluster served.
	for gi := 0; gi < graphs; gi++ {
		want, _, _, err := oracle.HandleRaw(colorBody(30+gi, gi))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(colorGot[gi], want) {
			t.Fatalf("graph %d: cluster body differs from single-node oracle", gi)
		}
	}
	for si := 0; si < sessions; si++ {
		name := fmt.Sprintf("sess-%d", si)
		base := exp.GraphSpec{Family: "gnm", N: 24, M: 50, Seed: int64(si)}
		stream := exp.MutationStream{Kind: "mix", Base: base, Ops: opsPerSession, Seed: int64(40 + si)}
		_, muts, err := stream.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := oracle.Mutate(service.MutateRequest{Session: name, Base: &base}); err != nil {
			t.Fatal(err)
		}
		got := sessGot[name]
		if got == nil {
			t.Fatalf("session %s: no recorded responses", name)
		}
		for i, op := range muts {
			want, _, err := oracle.Mutate(service.MutateRequest{Session: name, Ops: []exp.Mutation{op}})
			if err != nil {
				t.Fatal(err)
			}
			if got.fingerprints[i] != want.Fingerprint {
				t.Fatalf("session %s op %d: fingerprint diverged from oracle", name, i)
			}
		}
		// The subscriber saw every commit, in order, gapless from hello, with
		// the fingerprints the mutator was told.
		seqs, prints := subSeqs[name], subPrints[name]
		if len(seqs) != opsPerSession {
			t.Fatalf("session %s: subscriber saw %d deltas, want %d", name, len(seqs), opsPerSession)
		}
		for i, seq := range seqs {
			if want := subHellos[name] + int64(i) + 1; seq != want {
				t.Fatalf("session %s delta %d: seq %d, want %d", name, i, seq, want)
			}
			if prints[i] != got.fingerprints[i] {
				t.Fatalf("session %s delta %d: fingerprint differs from mutate response", name, i)
			}
		}
	}

	// Routing stuck: session reads without a base spec only work on the
	// owner, so a plain read through the gateway proves stickiness.
	for si := 0; si < sessions; si++ {
		name := fmt.Sprintf("sess-%d", si)
		body, _ := json.Marshal(service.MutateRequest{Session: name, Colors: true})
		resp, data := postJSON(t, tc.gwSrv.URL+"/v1/mutate", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("baseless read of %s via gateway: %d: %s (routing not sticky?)", name, resp.StatusCode, data)
		}
	}

	st := tc.gw.Stats()
	if st.ColorForwards == 0 || st.MutateForwards == 0 || st.SubscribeForwards == 0 {
		t.Fatalf("gateway forwarded nothing? %+v", st)
	}
	if st.HealthyPeers != 3 {
		t.Fatalf("healthy peers %d, want 3", st.HealthyPeers)
	}
}

// TestClusterRemoteFill: a node that misses locally on a key another node
// owns fills from the owner's cache instead of recomputing — runs stay at
// one cluster-wide however the request is (mis)routed.
func TestClusterRemoteFill(t *testing.T) {
	cfg := service.Config{Workers: 2, BatchWindow: 100 * time.Microsecond}
	tc := startCluster(t, 3, cfg)

	body := colorBody(40, 99)
	var probe struct {
		Graph exp.GraphSpec `json:"graph"`
	}
	json.Unmarshal(body, &probe)
	ring := cluster.NewRing(tc.peers)
	owner := ring.Owner(cluster.ColorKey(probe.Graph.String()))
	ownerIdx, otherIdx := -1, -1
	for i, p := range tc.peers {
		if p == owner {
			ownerIdx = i
		} else if otherIdx < 0 {
			otherIdx = i
		}
	}

	// Prime the owner through the gateway (that is where routing lands it).
	resp, want := postJSON(t, tc.gwSrv.URL+"/v1/color", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prime: %d: %s", resp.StatusCode, want)
	}
	if got := resp.Header.Get("X-Colord-Peer"); got != owner {
		t.Fatalf("gateway routed to %s, ring says owner is %s", got, owner)
	}

	// Hit a non-owner directly: it must fill from the owner, not recompute.
	resp2, got := postJSON(t, tc.peers[otherIdx]+"/v1/color", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("misrouted request: %d: %s", resp2.StatusCode, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("filled response differs from the owner's bytes")
	}
	other := tc.nodes[otherIdx].Stats()
	if other.Filled != 1 {
		t.Fatalf("non-owner filled %d, want 1", other.Filled)
	}
	if other.Runs != 0 {
		t.Fatalf("non-owner ran %d computations, want 0 (should have filled from peer)", other.Runs)
	}
	if ownerStats := tc.nodes[ownerIdx].Stats(); ownerStats.Runs != 1 {
		t.Fatalf("owner ran %d computations, want exactly 1 cluster-wide", ownerStats.Runs)
	}
}

// TestClusterPeerDeathMidRun: killing a node mid-traffic leaves the read
// plane fully available — requests retry down the rank order to the next
// peer, bytes unchanged, and the gateway's statz shows the death.
func TestClusterPeerDeathMidRun(t *testing.T) {
	cfg := service.Config{Workers: 2, BatchWindow: 100 * time.Microsecond}
	tc := startCluster(t, 3, cfg)
	oracle := service.New(cfg)
	defer oracle.Close()

	// Find a graph owned by node 0 so its death forces a failover.
	ring := cluster.NewRing(tc.peers)
	seed := 0
	for ; seed < 1000; seed++ {
		var probe struct {
			Graph exp.GraphSpec `json:"graph"`
		}
		json.Unmarshal(colorBody(28, seed), &probe)
		if ring.Owner(cluster.ColorKey(probe.Graph.String())) == tc.peers[0] {
			break
		}
	}
	body := colorBody(28, seed)

	resp, before := postJSON(t, tc.gwSrv.URL+"/v1/color", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-death: %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Colord-Peer") != tc.peers[0] {
		t.Fatalf("expected node 0 to own the test graph, got %s", resp.Header.Get("X-Colord-Peer"))
	}

	// Kill the owner mid-run.
	tc.backends[0].Close()

	resp2, after := postJSON(t, tc.gwSrv.URL+"/v1/color", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-death: %d: %s", resp2.StatusCode, after)
	}
	if peer := resp2.Header.Get("X-Colord-Peer"); peer == tc.peers[0] {
		t.Fatal("request claims to have been served by the dead peer")
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failover served different bytes — determinism broken across nodes")
	}
	want, _, _, err := oracle.HandleRaw(body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, want) {
		t.Fatal("failover bytes differ from single-node oracle")
	}

	st := tc.gw.Stats()
	if st.Retries == 0 {
		t.Fatalf("no retries recorded across a peer death: %+v", st)
	}
	// The prober (50ms cadence) confirms the death shortly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st = tc.gw.Stats()
		if st.HealthyPeers == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prober never marked the dead peer down: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, p := range st.Peers {
		if p.URL == tc.peers[0] && p.Healthy {
			t.Fatal("dead peer still marked healthy")
		}
	}
}
