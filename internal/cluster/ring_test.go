package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func testPeers(n int) []string {
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("http://node-%d:8080", i)
	}
	return peers
}

// TestRingDeterministic: two independently built rings over the same peers —
// in any order — agree on every key's owner and full rank. This is the
// coordination-free placement contract: gateways and nodes never exchange
// routing state.
func TestRingDeterministic(t *testing.T) {
	peers := testPeers(5)
	shuffled := []string{peers[3], peers[0], peers[4], peers[2], peers[1]}
	a, b := NewRing(peers), NewRing(shuffled)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("color/gnm(n=%d,m=%d,seed=7)", 100+i, 300+i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owners disagree across build orders", key)
		}
		if !reflect.DeepEqual(a.Rank(key), b.Rank(key)) {
			t.Fatalf("key %q: ranks disagree across build orders", key)
		}
	}
}

// TestRingRankIsPermutation: Rank returns every peer exactly once, headed by
// Owner — the failover order is total and starts at the primary.
func TestRingRankIsPermutation(t *testing.T) {
	r := NewRing(testPeers(7))
	for i := 0; i < 200; i++ {
		key := SessionKey(fmt.Sprintf("sess-%d", i))
		rank := r.Rank(key)
		if len(rank) != 7 {
			t.Fatalf("rank has %d peers, want 7", len(rank))
		}
		if rank[0] != r.Owner(key) {
			t.Fatalf("rank[0] %q != owner %q", rank[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, p := range rank {
			if seen[p] {
				t.Fatalf("peer %q appears twice in rank", p)
			}
			seen[p] = true
		}
	}
}

// TestRingMinimalDisruption is rendezvous hashing's reason to exist: removing
// one peer remaps only the keys it owned (to their rank-2 peer), and every
// key owned by a survivor keeps its owner.
func TestRingMinimalDisruption(t *testing.T) {
	peers := testPeers(5)
	full := NewRing(peers)
	dead := peers[2]
	survivors := append(append([]string{}, peers[:2]...), peers[3:]...)
	reduced := NewRing(survivors)

	moved := 0
	for i := 0; i < 2000; i++ {
		key := ColorKey(fmt.Sprintf("graph-%d", i))
		before := full.Owner(key)
		after := reduced.Owner(key)
		if before != dead {
			if after != before {
				t.Fatalf("key %q moved from surviving owner %q to %q", key, before, after)
			}
			continue
		}
		moved++
		if want := full.Rank(key)[1]; after != want {
			t.Fatalf("orphaned key %q went to %q, want its rank-2 peer %q", key, after, want)
		}
	}
	if moved == 0 {
		t.Fatal("no keys owned by the removed peer — test is vacuous")
	}
}

// TestRingBalance: ownership spreads across peers — no peer starves, none
// hoards. Loose bounds: rendezvous over FNV is not perfect, only unbiased.
func TestRingBalance(t *testing.T) {
	peers := testPeers(5)
	r := NewRing(peers)
	counts := map[string]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		counts[r.Owner(ColorKey(fmt.Sprintf("g-%d", i)))]++
	}
	for _, p := range peers {
		share := float64(counts[p]) / keys
		if share < 0.10 || share > 0.35 {
			t.Fatalf("peer %s owns %.1f%% of keys, want 10%%-35%%", p, 100*share)
		}
	}
}

// TestRingDegenerate: empty and single-peer rings behave.
func TestRingDegenerate(t *testing.T) {
	if o := NewRing(nil).Owner("k"); o != "" {
		t.Fatalf("empty ring owner %q, want empty", o)
	}
	one := NewRing([]string{"http://solo:1", "http://solo:1", ""})
	if one.Len() != 1 {
		t.Fatalf("dedup failed: %d peers", one.Len())
	}
	if o := one.Owner("k"); o != "http://solo:1" {
		t.Fatalf("single-peer owner %q", o)
	}
}
