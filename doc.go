// Package repro is a from-scratch Go reproduction of
//
//	Leonid Barenboim, Michael Elkin.
//	"Distributed Deterministic Edge Coloring using Bounded Neighborhood
//	Independence." PODC 2011 (arXiv:1010.2454).
//
// The library implements the paper's LOCAL-model algorithms — Procedure
// Defective-Color, Procedure Legal-Color, their §5 edge-coloring variants
// for general graphs, and the §6 extensions — together with every substrate
// they depend on (a synchronous message-passing simulator with three
// interchangeable engines — Goroutines, Lockstep, and Sharded — and a
// reusable Runner that amortizes the runtime state across repeated runs;
// CSR graphs with build-time reverse ports; Linial's cover-free color
// reduction, Kuhn's defective colorings, Cole–Vishkin forest 3-coloring,
// Panconesi–Rizzi edge coloring) and the baselines the paper compares
// against.
//
// Determinism makes the algorithms servable: cmd/colord is a long-running
// HTTP/JSON coloring daemon (internal/service) with a deterministic result
// cache keyed by canonical graph fingerprints, a request micro-batcher, and
// per-graph pools of reusable runners; cmd/loadgen drives it with mixed
// closed-loop workloads and exports latency/throughput measurements as
// BENCH_service.json. Locality makes them maintainable: internal/dynamic
// keeps a legal edge coloring across edge insertions and deletions by
// running the dist engines on only the induced repair region (POST
// /v1/mutate serves named mutable graph sessions; loadgen's churn mode
// measures mutation throughput against deterministic exp.MutationStream
// workloads), with the maintained coloring byte-identical to a documented
// canonical recompute of the mutated graph at every step.
//
// Start at DESIGN.md for the system inventory, README.md for the
// quickstarts, EXPERIMENTS.md for the measured reproduction of every table
// and figure, examples/quickstart for the API, and cmd/repro to regenerate
// all experiment artifacts (its -engine and -workers flags select the
// scheduler and the experiment worker pool; artifacts are byte-identical
// either way). The root bench_test.go exposes one benchmark per paper
// artifact, and scripts/bench.sh (make bench) exports the whole benchmark
// suite as BENCH_runtime.json.
package repro
