// Deadline: the §6.2 tradeoff in action. A sensor network must agree on a
// TDMA transmission schedule (edge coloring = time slots for pairwise links)
// before a deadline measured in communication rounds. Corollary 6.3 lets us
// buy speed with extra slots: splitting the links into more classes (smaller
// class degree q) cuts the rounds roughly linearly while the slot count
// grows as O(Δ²/g). This example sweeps q until the deadline holds and
// reports the slot count paid for it.
package main

import (
	"fmt"
	"log"

	"repro/internal/edgecolor"
	"repro/internal/graph"
)

func main() {
	// The radio network: 384 nodes, links up to degree ~64.
	g := graph.TargetDegreeGNM(384, 64, 2026)
	delta := g.MaxDegree()
	fmt.Printf("network: %v\n", g)

	const deadline = 150 // rounds available to agree on the schedule

	type attempt struct {
		q, rounds, slots int
	}
	var chosen *attempt
	fmt.Printf("deadline: %d rounds; sweeping the Cor 6.3 tradeoff:\n", deadline)
	for _, q := range []int{delta, delta / 2, delta / 4, delta / 8} {
		if q < 4 {
			break
		}
		res, err := edgecolor.TradeoffEdgeColoring(g, 2, 6, q, edgecolor.Wide)
		if err != nil {
			log.Fatal(err)
		}
		slot, err := graph.MergePortColors(g, res.Outputs)
		if err != nil {
			log.Fatal(err)
		}
		if err := graph.CheckEdgeColoring(g, slot); err != nil {
			log.Fatal(err)
		}
		a := attempt{q: q, rounds: res.Stats.Rounds, slots: graph.CountColors(slot)}
		marker := ""
		if a.rounds <= deadline && chosen == nil {
			chosen = &a
			marker = "  <- meets deadline"
		}
		fmt.Printf("  q=%3d: %4d rounds, %4d slots%s\n", a.q, a.rounds, a.slots, marker)
	}
	if chosen == nil {
		log.Fatalf("no configuration met the %d-round deadline", deadline)
	}
	fmt.Printf("chosen: class degree q=%d — schedule in %d rounds using %d slots (Δ=%d, so ~%.1f× the minimum)\n",
		chosen.q, chosen.rounds, chosen.slots, delta, float64(chosen.slots)/float64(delta))
}
