// Hypergraph: committee scheduling through the paper's §1.2 lens. Each
// committee is a hyperedge over its members (an r-hypergraph if committees
// have at most r members); two committees conflict iff they share a member.
// The conflict graph is the hypergraph's line graph L(H), whose neighborhood
// independence is at most r — exactly the graph family the paper's vertex
// algorithms are built for. A legal vertex coloring of L(H) with c = r
// assigns meeting slots so that nobody must be in two rooms at once.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	const (
		people     = 60
		committees = 90
		r          = 3 // committee size bound => I(L(H)) <= 3
	)
	h := graph.RandomHypergraph(people, committees, r, 11)
	lh := h.LineGraph()
	fmt.Printf("committees: %d over %d people (r=%d); conflict graph: %v\n",
		len(h.Edges), h.N, h.R, lh)

	// Certify the §1.2 structural claim on this instance.
	ni := graph.NeighborhoodIndependence(lh)
	fmt.Printf("neighborhood independence of L(H): %d (paper bound: <= r = %d)\n", ni, r)
	if ni > r {
		log.Fatal("structural bound violated — generator bug")
	}

	plan, err := core.AutoPlan(lh.MaxDegree(), r, 2, 4*r+1, false)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.LegalColoring(lh, plan, core.StartAux)
	if err != nil {
		log.Fatal(err)
	}
	if err := graph.CheckVertexColoring(lh, res.Outputs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("meeting slots: %d (Δ+1 bound would be %d) in %d rounds\n",
		graph.CountColors(res.Outputs), lh.MaxDegree()+1, res.Stats.Rounds)

	// Show the first few committees' slots.
	for i := 0; i < 5 && i < len(h.Edges); i++ {
		fmt.Printf("  committee %v -> slot %d\n", h.Edges[i], res.Outputs[i])
	}
}
