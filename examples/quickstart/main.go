// Quickstart: color the edges of a random graph with the paper's §5
// deterministic algorithm, verify the result, and inspect the cost
// accounting of the LOCAL-model simulator.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/edgecolor"
	"repro/internal/graph"
)

func main() {
	// A random graph on 200 vertices with 1200 edges.
	g := graph.GNM(200, 1200, 42)
	fmt.Printf("input: %v\n", g)

	// Plan the Legal-Color recursion for this Δ: c = 2 because the line
	// graph of any graph has neighborhood independence at most 2 (Lemma
	// 5.1); b and p trade per-level rounds against palette size.
	plan, err := core.AutoPlan(g.MaxDegree(), 2, 2, 6, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %v\n", plan)

	// Run the distributed algorithm: one goroutine per vertex, synchronous
	// rounds, O(log n)-bit messages.
	res, err := edgecolor.LegalEdgeColoring(g, plan, edgecolor.Wide)
	if err != nil {
		log.Fatal(err)
	}

	// Both endpoints of every edge hold its color; merge and verify.
	colors, err := graph.MergePortColors(g, res.Outputs)
	if err != nil {
		log.Fatal(err)
	}
	if err := graph.CheckEdgeColoring(g, colors); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("legal edge coloring with %d colors (palette bound %d, 2Δ-1 = %d)\n",
		graph.CountColors(colors), plan.TotalPalette(), 2*g.MaxDegree()-1)
	fmt.Printf("cost: %v\n", res.Stats)

	for id := 0; id < 5; id++ {
		e := g.EdgeAt(id)
		fmt.Printf("  edge (%d,%d) -> color %d\n", e.U, e.V, colors[id])
	}
}
