// Boundedgrowth: frequency assignment in a wireless mesh. Radios at random
// positions interfere within range; the interference graph is a unit-disk
// graph — a bounded-growth family (§1.2), which the paper notes is strictly
// contained in the bounded-neighborhood-independence family its algorithms
// support. We certify the instance's I(G), then run Legal-Color to assign
// frequencies so that no two interfering radios share one.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	// 500 radios in the unit square, interference radius 0.06.
	g := graph.Geometric(500, 0.06, 17)
	fmt.Printf("wireless mesh: %v\n", g)

	// Unit-disk neighborhoods split into few independent "sectors": compute
	// the exact neighborhood independence of this instance (theory: <= 5
	// for unit-disk graphs) and hand it to the algorithm as the paper's c.
	c := graph.NeighborhoodIndependence(g)
	fmt.Printf("neighborhood independence: %d (unit-disk theory bound: 5)\n", c)
	if c < 1 {
		fmt.Println("graph has no edges; single frequency suffices")
		return
	}

	plan, err := core.AutoPlan(g.MaxDegree(), c, 2, 4*c+1, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %v\n", plan)
	res, err := core.LegalColoring(g, plan, core.StartAux)
	if err != nil {
		log.Fatal(err)
	}
	if err := graph.CheckVertexColoring(g, res.Outputs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frequencies used: %d (Δ=%d) in %d rounds, max message %dB\n",
		graph.CountColors(res.Outputs), g.MaxDegree(), res.Stats.Rounds,
		res.Stats.MaxMessageBytes)

	// The Figure-1 contrast: growth-bounded algorithms (e.g. [28]) need
	// f(r)-bounded growth; the paper's algorithm only needs bounded I(G).
	worst := 0
	for v := 0; v < g.N(); v += 50 {
		if gr := graph.GrowthAt(g, v, 2); gr > worst {
			worst = gr
		}
	}
	fmt.Printf("sampled growth at r=2: %d (bounded, as unit-disk theory predicts)\n", worst)
}
