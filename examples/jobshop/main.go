// Jobshop: the classic application the paper's introduction cites —
// scheduling unit-length tasks, each binding one job to one machine, so
// that no job and no machine does two things at once. Tasks are edges of a
// bipartite (jobs × machines) graph; a legal edge coloring is exactly a
// conflict-free schedule whose colors are time slots. Vizing/König say ~Δ
// slots are necessary; the paper computes O(Δ) slots fast and distributedly
// (each job/machine being an independent agent).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/edgecolor"
	"repro/internal/graph"
)

const (
	numJobs     = 40
	numMachines = 12
	numTasks    = 180
)

func main() {
	// Random task list: (job, machine) pairs, no duplicates.
	rng := rand.New(rand.NewSource(7))
	b := graph.NewBuilder(numJobs + numMachines)
	type task struct{ job, machine int }
	var tasks []task
	for len(tasks) < numTasks {
		j := rng.Intn(numJobs)
		m := rng.Intn(numMachines)
		if b.TryAddEdge(j, numJobs+m) {
			tasks = append(tasks, task{job: j, machine: m})
		}
	}
	g := b.Build()
	fmt.Printf("job-shop instance: %d jobs, %d machines, %d tasks, max load Δ=%d\n",
		numJobs, numMachines, g.M(), g.MaxDegree())

	plan, err := core.AutoPlan(g.MaxDegree(), 2, 2, 6, true)
	if err != nil {
		log.Fatal(err)
	}
	res, err := edgecolor.LegalEdgeColoring(g, plan, edgecolor.Wide)
	if err != nil {
		log.Fatal(err)
	}
	slot, err := graph.MergePortColors(g, res.Outputs)
	if err != nil {
		log.Fatal(err)
	}
	if err := graph.CheckEdgeColoring(g, slot); err != nil {
		log.Fatal(err)
	}
	makespan := graph.MaxColor(slot)
	fmt.Printf("schedule computed in %d communication rounds: %d time slots (lower bound Δ=%d)\n",
		res.Stats.Rounds, makespan, g.MaxDegree())

	// Print machine 0's timetable as a sample.
	fmt.Println("machine 0 timetable:")
	for port, id := range g.IncidentEdgeIDs(numJobs + 0) {
		_ = port
		e := g.EdgeAt(int(id))
		fmt.Printf("  slot %2d: job %d\n", slot[id], e.U)
	}

	// Sanity: no machine or job is double-booked in any slot (this is what
	// edge-coloring legality means here).
	for v := 0; v < g.N(); v++ {
		seen := map[int]bool{}
		for _, id := range g.IncidentEdgeIDs(v) {
			if seen[slot[id]] {
				log.Fatalf("double booking at vertex %d slot %d", v, slot[id])
			}
			seen[slot[id]] = true
		}
	}
	fmt.Println("verified: no job or machine is double-booked")
}
